// Command ngdserve is the NGD violation-serving daemon: it opens a
// continuous detection session over a graph and a rule set, then serves
// snapshot-isolated violation queries over HTTP while update batches
// stream in through an asynchronous, coalescing ingest queue
// (internal/serve).
//
// Endpoints:
//
//	GET  /healthz            liveness + current commit epoch
//	GET  /violations         keyset-paginated store queries
//	                         (query params: limit, after, rule, node)
//	GET  /violations/{key}   one violation by canonical key
//	GET  /feed               violation change feed (SSE; ?poll=1 long-poll,
//	                         ?since=epoch cursor resume)
//	GET  /stats              server, store, feed and last-batch statistics
//	GET  /rules/analysis     Σ admission report (satisfiability, unsat core,
//	                         minimization), cached by Σ signature
//	POST /update             {"ops":[...]}; add ?sync=1 to wait for commit
//
// Every boot — fresh or recovered — runs the Σ admission gate (-analyze):
// strict refuses an unsatisfiable rule set with its minimal unsat core on
// stderr (exit 3), warn (the default) logs the findings and serves, off
// skips the analysis and the session's rule minimization entirely.
//
// The workload comes either from files in the text DSL:
//
//	ngdserve -graph g.txt -rules rules.txt
//
// or from the built-in generators (handy for demos and smoke tests):
//
//	ngdserve -gen yago2 -n 300 -k 12 -seed 1
//
// With -data the daemon is durable (internal/store): every committed batch
// is write-ahead logged before it mutates the graph, the whole session
// state is checkpointed into a binary snapshot every -checkpoint batches,
// and a restart with the same -data directory recovers — snapshot load
// plus WAL replay — to exactly the state of the process that died,
// including after a SIGKILL mid-write (a torn final record is truncated
// away). Once a data directory exists, -graph/-gen are no longer needed:
// the rules and graph live in the snapshot.
//
//	ngdserve -gen yago2 -n 300 -data /var/lib/ngd   # first boot ingests
//	ngdserve -data /var/lib/ngd                     # every later boot recovers
//
// Reads are never blocked by commits: every request is served from an
// immutable copy-on-write snapshot of the violation store, atomically
// swapped after each commit. See docs/OPERATIONS.md for the full CLI and
// file-format reference and the recovery runbook.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ngd/internal/analyze"
	"ngd/internal/core"
	"ngd/internal/dsl"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/par"
	"ngd/internal/serve"
	"ngd/internal/session"
	"ngd/internal/store"
)

var (
	addr      = flag.String("addr", ":8377", "listen address")
	graphFile = flag.String("graph", "", "graph file (text DSL); mutually exclusive with -gen")
	rulesFile = flag.String("rules", "", "rule file (text DSL); required with -graph")
	genName   = flag.String("gen", "", "generate the workload instead: dbpedia|yago2|pokec|synthetic")
	entities  = flag.Int("n", 300, "generated graph size (entities)")
	numRules  = flag.Int("k", 12, "generated rule count (0 = the profile's effectiveness rule set, which flags the generator's injected errors)")
	seed      = flag.Int64("seed", 1, "generator seed")
	parallel  = flag.Bool("parallel", false, "route commits through PIncDect")
	workers   = flag.Int("p", 8, "parallel workers (with -parallel)")
	queue     = flag.Int("queue", 256, "ingest queue depth")
	dataDir   = flag.String("data", "", "durable state directory (snapshot + write-ahead log); empty = in-memory only")
	ckptEvery = flag.Int("checkpoint", 64, "with -data: batches between background checkpoints")
	walNoSync = flag.Bool("wal-nosync", false, "with -data: skip the per-batch WAL fsync (faster; batches in the OS write-back window may be lost on crash)")
	maxBody   = flag.Int64("max-body", 8<<20, "max POST /update body bytes (413 beyond it)")
	feedLog   = flag.Int("feed-backlog", 64, "change-feed events retained for ?since= cursor resume (older cursors get 410)")
	feedBuf   = flag.Int("feed-buffer", 32, "per-subscriber feed buffer; a consumer falling further behind is disconnected")
	anMode    = flag.String("analyze", "warn", "Σ admission gate: strict (refuse an unsatisfiable Σ, exit 3), warn (log findings, serve anyway), off (skip analysis and minimization)")
	anTimeout = flag.Duration("analyze-timeout", 30*time.Second, "wall-clock budget for the Σ analysis; exhausted probes degrade to unknown (never refuse)")
	pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); keeps profiling off the public listener")
	packSnaps = flag.Bool("pack-snapshots", false, "publish each epoch as a CSR-packed frozen graph copy (cache-linear reader scans; costs O(|V|+|E|) per commit)")
)

func main() {
	flag.Parse()
	log.SetPrefix("ngdserve: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	gateMode, err := analyze.ParseMode(*anMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ngdserve:", err)
		os.Exit(2)
	}

	sessOpts := session.Options{Parallel: *parallel, Par: par.Hybrid(*workers), PackSnapshots: *packSnaps}
	if gateMode == analyze.ModeOff {
		sessOpts.Analyze.NoMinimize = true
	}

	var (
		sess   *session.Session
		rules  *core.Set
		names  map[string]graph.NodeID
		st     *store.Store
		report *analyze.Report
	)

	if *dataDir != "" {
		var rec *store.Recovered
		var err error
		st, rec, err = store.Open(*dataDir, store.Options{
			CheckpointEvery: *ckptEvery,
			NoSync:          *walNoSync,
			Session:         sessOpts,
		})
		if err != nil {
			log.Fatal(err)
		}
		if rec != nil {
			if *graphFile != "" || *genName != "" {
				log.Printf("recovering from %s; ignoring -graph/-gen (the workload lives in the snapshot)", *dataDir)
			}
			sess, rules, names = rec.Session, rec.Rules, rec.Names
			torn := ""
			if rec.Truncated {
				torn = ", torn tail truncated"
			}
			log.Printf("recovered seq %d: snapshot seq %d (%d bytes, %v) + %d batches replayed (%d bytes, %v)%s",
				rec.Seq, rec.SnapshotSeq, rec.SnapshotBytes, rec.SnapshotLoad.Round(time.Millisecond),
				rec.Replayed, rec.WALBytes, rec.WALReplay.Round(time.Millisecond), torn)
			// the admission gate runs on recovery too: the persisted Σ is
			// re-analyzed (same signature, same verdicts) before serving
			report = runGate(rules, nil, gateMode)
		}
	}

	if sess == nil {
		g, rs, nm, lines, err := loadWorkload()
		if err != nil {
			log.Fatal(err)
		}
		report = runGate(rs, lines, gateMode)
		opened := time.Now()
		sess = session.New(g, rs, sessOpts)
		rules, names = rs, nm
		log.Printf("session open: |V|=%d |E|=%d ‖Σ‖=%d, %d violations seeded in %v",
			g.NumNodes(), g.NumEdges(), len(rules.Rules), sess.Len(),
			time.Since(opened).Round(time.Millisecond))
		if st != nil {
			if names == nil {
				names = make(map[string]graph.NodeID)
			}
			if err := st.Bootstrap(sess, rules, names); err != nil {
				log.Fatalf("bootstrap %s: %v", *dataDir, err)
			}
			log.Printf("durable: bootstrapped %s (checkpoint every %d batches)", *dataDir, *ckptEvery)
		}
	}

	srvOpts := serve.Options{
		QueueDepth:  *queue,
		Names:       names,
		MaxBody:     *maxBody,
		FeedBacklog: *feedLog,
		FeedBuffer:  *feedBuf,
		Analysis:    report,
	}
	if st != nil {
		srvOpts.OnNewNode = st.NoteName
		srvOpts.DurabilityErr = st.Err
		var lastHealth string // surface durability transitions, not every batch
		srvOpts.AfterCommit = func(bs session.BatchStats) {
			if bs.LogErr != nil {
				log.Printf("WAL append failed for batch %d: %v (batch committed in memory, NOT durable)", bs.Batch, bs.LogErr)
			}
			st.MaybeCheckpoint()
			health := ""
			if err := st.Err(); err != nil {
				health = err.Error()
			}
			if health != lastHealth {
				if health != "" {
					log.Printf("durability degraded: %s", health)
				} else {
					log.Printf("durability restored")
				}
				lastHealth = health
			}
		}
	}
	srv := serve.New(sess, srvOpts)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// profiling stays on its own listener so exposing the query API never
	// exposes /debug/pprof; bind it to localhost in production
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil && err != http.ErrServerClosed {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	srv.Close() // drain + commit anything still queued
	if st != nil {
		// final checkpoint: the next boot loads the snapshot and replays
		// nothing. Safe here — the serving writer has exited, so this
		// goroutine is the session's sole owner.
		if err := st.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
		if err := st.Close(); err != nil {
			log.Printf("store close: %v", err)
		}
		ss := st.Stats()
		log.Printf("durable: seq %d, snapshot seq %d, %d batches logged (%d WAL bytes), %d checkpoints",
			ss.Seq, ss.SnapshotSeq, ss.Batches, ss.WALBytes, ss.Checkpoints)
	}
	fst := srv.Stats()
	log.Printf("final: epoch %d, %d violations, %d commits (%d requests coalesced)",
		fst.Epoch, fst.StoreSize, fst.Commits, fst.Coalesced)
}

// runGate runs the Σ admission analysis (mode warn or strict), logs its
// findings, and — in strict mode — refuses an unsatisfiable Σ with the
// minimal unsat core on stderr and exit code 3. Returns the report for
// GET /rules/analysis (nil when the gate is off).
func runGate(rules *core.Set, lines map[string]int, mode analyze.Mode) *analyze.Report {
	if mode == analyze.ModeOff {
		return nil
	}
	rep := analyze.Analyze(rules, analyze.Options{Timeout: *anTimeout, Lines: lines})
	log.Printf("Σ analysis (%s): satisfiable=%v strongly=%v rules=%d dropped=%d in %dms, signature %.12s…",
		mode, rep.Satisfiable, rep.StronglySatisfiable, rep.NumRules, len(rep.Dropped),
		rep.ElapsedMS, rep.Signature)
	if d := rep.Diagnostic(); d != "" {
		for _, line := range strings.Split(strings.TrimRight(d, "\n"), "\n") {
			log.Print(line)
		}
	}
	if mode == analyze.ModeStrict && rep.Unsat() {
		fmt.Fprintf(os.Stderr, "ngdserve: refusing to serve an unsatisfiable Σ (-analyze=strict)\n%s", rep.Diagnostic())
		os.Exit(3)
	}
	return rep
}

// loadWorkload resolves the graph, rules, external-id mapping and rule
// source lines from the flags: files in the text DSL, or a generated
// dataset (no source lines there).
func loadWorkload() (*graph.Graph, *core.Set, map[string]graph.NodeID, map[string]int, error) {
	if (*graphFile == "") == (*genName == "") {
		if *dataDir != "" {
			return nil, nil, nil, nil, fmt.Errorf("%s holds no recoverable state yet: exactly one of -graph or -gen is required for the first boot", *dataDir)
		}
		return nil, nil, nil, nil, fmt.Errorf("exactly one of -graph or -gen is required")
	}
	if *graphFile != "" {
		if *rulesFile == "" {
			return nil, nil, nil, nil, fmt.Errorf("-rules is required with -graph")
		}
		gf, err := os.Open(*graphFile)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		defer gf.Close()
		g, names, err := dsl.LoadGraph(gf)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("load graph: %w", err)
		}
		rf, err := os.Open(*rulesFile)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		defer rf.Close()
		rules, lines, err := dsl.ParseRulesLocated(rf)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("parse rules: %w", err)
		}
		return g, rules, names, lines, nil
	}
	p, ok := gen.ProfileByName(*genName)
	if !ok {
		return nil, nil, nil, nil, fmt.Errorf("unknown profile %q (dbpedia|yago2|pokec|synthetic)", *genName)
	}
	ds := gen.Generate(p, *entities, *seed)
	var rules *core.Set
	if *numRules == 0 {
		rules = gen.EffectivenessRules(p)
	} else {
		rules = gen.Rules(p, gen.RuleConfig{Count: *numRules, MaxDiameter: 4, Seed: *seed})
	}
	return ds.G, rules, nil, nil, nil
}
