// Command ngdserve is the NGD violation-serving daemon: it opens a
// continuous detection session over a graph and a rule set, then serves
// snapshot-isolated violation queries over HTTP while update batches
// stream in through an asynchronous, coalescing ingest queue
// (internal/serve).
//
// Endpoints:
//
//	GET  /healthz            liveness + current commit epoch
//	GET  /violations         live store (query params: limit, offset, rule)
//	GET  /violations/{key}   one violation by canonical key
//	GET  /stats              server, store and last-batch statistics
//	POST /update             {"ops":[...]}; add ?sync=1 to wait for commit
//
// The workload comes either from files in the text DSL:
//
//	ngdserve -graph g.txt -rules rules.txt
//
// or from the built-in generators (handy for demos and smoke tests):
//
//	ngdserve -gen yago2 -n 300 -k 12 -seed 1
//
// Reads are never blocked by commits: every request is served from an
// immutable copy-on-write snapshot of the violation store, atomically
// swapped after each commit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ngd/internal/core"
	"ngd/internal/dsl"
	"ngd/internal/gen"
	"ngd/internal/graph"
	"ngd/internal/par"
	"ngd/internal/serve"
	"ngd/internal/session"
)

var (
	addr      = flag.String("addr", ":8377", "listen address")
	graphFile = flag.String("graph", "", "graph file (text DSL); mutually exclusive with -gen")
	rulesFile = flag.String("rules", "", "rule file (text DSL); required with -graph")
	genName   = flag.String("gen", "", "generate the workload instead: dbpedia|yago2|pokec|synthetic")
	entities  = flag.Int("n", 300, "generated graph size (entities)")
	numRules  = flag.Int("k", 12, "generated rule count (0 = the profile's effectiveness rule set, which flags the generator's injected errors)")
	seed      = flag.Int64("seed", 1, "generator seed")
	parallel  = flag.Bool("parallel", false, "route commits through PIncDect")
	workers   = flag.Int("p", 8, "parallel workers (with -parallel)")
	queue     = flag.Int("queue", 256, "ingest queue depth")
)

func main() {
	flag.Parse()
	log.SetPrefix("ngdserve: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	g, rules, names, err := loadWorkload()
	if err != nil {
		log.Fatal(err)
	}

	opened := time.Now()
	sess := session.New(g, rules, session.Options{
		Parallel: *parallel,
		Par:      par.Hybrid(*workers),
	})
	log.Printf("session open: |V|=%d |E|=%d ‖Σ‖=%d, %d violations seeded in %v",
		g.NumNodes(), g.NumEdges(), len(rules.Rules), sess.Len(),
		time.Since(opened).Round(time.Millisecond))

	srv := serve.New(sess, serve.Options{QueueDepth: *queue, Names: names})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	srv.Close() // drain + commit anything still queued
	st := srv.Stats()
	log.Printf("final: epoch %d, %d violations, %d commits (%d requests coalesced)",
		st.Epoch, st.StoreSize, st.Commits, st.Coalesced)
}

// loadWorkload resolves the graph, rules and external-id mapping from the
// flags: files in the text DSL, or a generated dataset.
func loadWorkload() (*graph.Graph, *core.Set, map[string]graph.NodeID, error) {
	if (*graphFile == "") == (*genName == "") {
		return nil, nil, nil, fmt.Errorf("exactly one of -graph or -gen is required")
	}
	if *graphFile != "" {
		if *rulesFile == "" {
			return nil, nil, nil, fmt.Errorf("-rules is required with -graph")
		}
		gf, err := os.Open(*graphFile)
		if err != nil {
			return nil, nil, nil, err
		}
		defer gf.Close()
		g, names, err := dsl.LoadGraph(gf)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("load graph: %w", err)
		}
		rf, err := os.Open(*rulesFile)
		if err != nil {
			return nil, nil, nil, err
		}
		defer rf.Close()
		rules, err := dsl.ParseRules(rf)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("parse rules: %w", err)
		}
		return g, rules, names, nil
	}
	p, ok := gen.ProfileByName(*genName)
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown profile %q (dbpedia|yago2|pokec|synthetic)", *genName)
	}
	ds := gen.Generate(p, *entities, *seed)
	var rules *core.Set
	if *numRules == 0 {
		rules = gen.EffectivenessRules(p)
	} else {
		rules = gen.Rules(p, gen.RuleConfig{Count: *numRules, MaxDiameter: 4, Seed: *seed})
	}
	return ds.G, rules, nil, nil
}
