// Knowledge-base cleaning: the Yago-style population inconsistencies of the
// paper (Example 1(2) and Exp-5). A synthetic knowledge base of regions is
// generated with the invariant female + male = total population; a few
// regions are corrupted. Two NGDs — the φ2 sum rule and an Exp-5-style
// "living people" categorization rule — catch every seeded error.
//
// Expected output: every seeded error caught, e.g.
//
//	seeded 11 census errors + 1 categorization error
//	caught: 11 population-sum violations, 1 living-people violations
//	  suspicious living person: John Macpherson
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"ngd"
)

const rules = `
# φ2: total population must equal female + male population
rule population-sum {
  match {
    x: area
    f: integer
    m: integer
    t: integer
    x -femalePopulation-> f
    x -malePopulation-> m
    x -populationTotal-> t
  }
  when {
  }
  then {
    f.val + m.val = t.val
  }
}

# NGD1 of Exp-5: anyone born before 1800 cannot be a living person
rule living-people {
  match {
    p: person
    y: integer
    c: category
    p -birthYear-> y
    p -category-> c
  }
  when {
    y.val < 1800
  }
  then {
    c.name != "living people"
  }
}
`

func main() {
	rng := rand.New(rand.NewSource(11))
	g := ngd.NewGraph()

	// regions with the sum invariant; corrupt ~5%
	corrupted := 0
	for i := 0; i < 200; i++ {
		area := g.AddNode("area")
		g.SetAttr(area, "name", ngd.Str(fmt.Sprintf("region-%d", i)))
		female := rng.Int63n(500000)
		male := rng.Int63n(500000)
		total := female + male
		if rng.Float64() < 0.05 {
			total += 1 + rng.Int63n(1000) // census error
			corrupted++
		}
		addIntChild(g, area, "femalePopulation", female)
		addIntChild(g, area, "malePopulation", male)
		addIntChild(g, area, "populationTotal", total)
	}

	// people with birth years and categories; John Macpherson (b. 1713) is
	// wrongly categorized as living (the DBpedia error Exp-5 reports)
	living := g.AddNode("category")
	g.SetAttr(living, "name", ngd.Str("living people"))
	historical := g.AddNode("category")
	g.SetAttr(historical, "name", ngd.Str("historical figures"))
	for i := 0; i < 100; i++ {
		p := g.AddNode("person")
		year := int64(1700 + rng.Intn(320))
		g.SetAttr(p, "name", ngd.Str(fmt.Sprintf("person-%d", i)))
		addIntChild(g, p, "birthYear", year)
		if year >= 1940 {
			g.AddEdge(p, living, "category")
		} else {
			g.AddEdge(p, historical, "category")
		}
	}
	macpherson := g.AddNode("person")
	g.SetAttr(macpherson, "name", ngd.Str("John Macpherson"))
	addIntChild(g, macpherson, "birthYear", 1713)
	g.AddEdge(macpherson, living, "category")

	set, err := ngd.ParseRules(strings.NewReader(rules))
	if err != nil {
		log.Fatal(err)
	}
	res := ngd.Detect(g, set)

	byRule := map[string]int{}
	for _, v := range res.Violations {
		byRule[v.Rule.Name]++
	}
	fmt.Printf("seeded %d census errors + 1 categorization error\n", corrupted)
	fmt.Printf("caught: %d population-sum violations, %d living-people violations\n",
		byRule["population-sum"], byRule["living-people"])
	for _, v := range res.Violations {
		if v.Rule.Name == "living-people" {
			p := v.Match[v.Rule.Pattern.VarIndex("p")]
			name, _ := g.AttrByName(p, "name").AsString()
			fmt.Printf("  suspicious living person: %s\n", name)
		}
	}
	if byRule["population-sum"] != corrupted {
		log.Fatalf("expected %d sum violations, got %d", corrupted, byRule["population-sum"])
	}
}

func addIntChild(g *ngd.Graph, parent ngd.NodeID, label string, val int64) {
	c := g.AddNode("integer")
	g.SetAttr(c, "val", ngd.Int(val))
	g.AddEdge(parent, c, label)
}
