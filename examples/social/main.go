// Social-network fake-account detection with incremental maintenance —
// the paper's φ4 (Example 3) and the update scenario of Examples 6 and 7.
//
// Accounts keyed to the same company are compared: if a real account
// (status = 1) out-follows and out-followers another by a large margin,
// the other is likely fake. The demo first runs batch detection, then
// streams a batch update ΔG (the deletion from Example 6 plus fresh
// accounts as in Example 7) through IncDetect and PIncDetect, showing
// ΔVio⁺/ΔVio⁻ instead of recomputation.
//
// φ4's precondition s1.val = 1 is the constant-literal shape the matcher
// compiles into an attribute-index candidate filter (§6.2 step (3), see
// DESIGN.md §3), so this example also exercises the pruned matching path.
// Expected output: six seeded "-helpdesk" fakes flagged by the batch run;
// after ΔG, one violation removed (status evidence deleted) and one added,
// with PIncDetect (p=8) agreeing and reporting its simulated makespan.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ngd"
)

func main() {
	g := ngd.NewGraph()
	rng := rand.New(rand.NewSource(7))

	// companies with one verified account and a population of normal
	// accounts; a handful of fakes mimic the NatWest_Help scam
	type company struct {
		node     ngd.NodeID
		verified ngd.NodeID
	}
	var companies []company
	var fakeNames []string
	for c := 0; c < 20; c++ {
		cn := g.AddNode("company")
		g.SetAttr(cn, "name", ngd.Str(fmt.Sprintf("company-%d", c)))
		ver := addAccount(g, fmt.Sprintf("company-%d-official", c), true,
			50000+rng.Int63n(100000), 10000+rng.Int63n(30000))
		g.AddEdge(ver, cn, "keys")
		companies = append(companies, company{cn, ver})
		if rng.Float64() < 0.3 {
			name := fmt.Sprintf("company-%d-helpdesk", c)
			fake := addAccount(g, name, true, rng.Int63n(5), rng.Int63n(5))
			g.AddEdge(fake, cn, "keys")
			fakeNames = append(fakeNames, name)
		}
	}

	rule := phi4()
	set := ngd.NewRuleSet(rule)

	res := ngd.Detect(g, set)
	fmt.Printf("batch detection: %d suspicious account pairs (seeded %d fakes)\n",
		len(res.Violations), len(fakeNames))
	for _, v := range res.Violations {
		y := v.Match[v.Rule.Pattern.VarIndex("y")]
		name, _ := g.AttrByName(y, "name").AsString()
		fmt.Printf("  flagged: %s\n", name)
	}

	// Example 6: the verified account of company 0 loses its status edge;
	// Example 7: a new clean helper account appears for the same company.
	delta := &ngd.Delta{}
	first := companies[0]
	statusLbl := g.Symbols().LookupLabel("status")
	var statusNode ngd.NodeID = -1
	for _, h := range g.Out(first.verified) {
		if h.Label == statusLbl {
			statusNode = h.To
		}
	}
	delta.Delete(first.verified, statusNode, statusLbl)

	clean := addAccount(g, "company-0-support", true, 40000, 9000)
	delta.Insert(clean, first.node, g.Symbols().LookupLabel("keys"))
	// account edges arrive with the batch: re-link its property edges via
	// the delta to exercise insertion pivots
	for _, h := range g.Out(clean) {
		delta.Insert(clean, h.To, h.Label)
		g.DeleteEdgeL(clean, h.To, h.Label)
	}

	dv := ngd.IncDetect(g, set, delta)
	fmt.Printf("\nincremental after ΔG (|ΔG| = %d): %d new violations, %d removed\n",
		delta.Len(), len(dv.Plus), len(dv.Minus))
	for _, v := range dv.Minus {
		y := v.Match[v.Rule.Pattern.VarIndex("y")]
		name, _ := g.AttrByName(y, "name").AsString()
		fmt.Printf("  no longer flagged (status evidence deleted): %s\n", name)
	}

	// the parallel incremental algorithm returns the same answer; the
	// Oracle preset runs the deterministic virtual-time driver so the
	// makespan below is reproducible (ngd.Parallel(8) would run the
	// same units on 8 real goroutine shards)
	pdv, metrics := ngd.PIncDetect(g, set, delta, ngd.Oracle(8))
	if len(pdv.Plus) != len(dv.Plus) || len(pdv.Minus) != len(dv.Minus) {
		log.Fatal("PIncDetect disagrees with IncDetect")
	}
	fmt.Printf("\nPIncDetect (p=8) agrees; simulated makespan %.0f cost units, %d work units\n",
		metrics.Makespan, metrics.Units)
}

// phi4 builds φ4 = Q4[x̄]({s1.val = 1, (m1−m2) + (n1−n2) > 10000} → s2.val = 0).
func phi4() *ngd.Rule {
	q := ngd.NewPattern()
	x := q.AddNode("x", "account")
	y := q.AddNode("y", "account")
	w := q.AddNode("w", "company")
	s1 := q.AddNode("s1", "boolean")
	m1 := q.AddNode("m1", "integer")
	n1 := q.AddNode("n1", "integer")
	s2 := q.AddNode("s2", "boolean")
	m2 := q.AddNode("m2", "integer")
	n2 := q.AddNode("n2", "integer")
	q.AddEdge(x, w, "keys")
	q.AddEdge(y, w, "keys")
	q.AddEdge(x, s1, "status")
	q.AddEdge(x, m1, "following")
	q.AddEdge(x, n1, "follower")
	q.AddEdge(y, s2, "status")
	q.AddEdge(y, m2, "following")
	q.AddEdge(y, n2, "follower")
	return ngd.MustRule("phi4", q,
		[]ngd.Literal{
			ngd.MustLiteral("s1.val = 1"),
			ngd.MustLiteral("(m1.val - m2.val) + (n1.val - n2.val) > 10000"),
		},
		[]ngd.Literal{ngd.MustLiteral("s2.val = 0")},
	)
}

func addAccount(g *ngd.Graph, name string, status bool, followers, following int64) ngd.NodeID {
	a := g.AddNode("account")
	g.SetAttr(a, "name", ngd.Str(name))
	s := g.AddNode("boolean")
	g.SetAttr(s, "val", ngd.Bool(status))
	g.AddEdge(a, s, "status")
	fo := g.AddNode("integer")
	g.SetAttr(fo, "val", ngd.Int(followers))
	g.AddEdge(a, fo, "follower")
	fg := g.AddNode("integer")
	g.SetAttr(fg, "val", ngd.Int(following))
	g.AddEdge(a, fg, "following")
	return a
}
