// Quickstart: catch the paper's first motivating inconsistency (Example 1):
// Yago records that BBC Trust was created in 2007 but destroyed in 1946.
// The NGD φ1 = Q1[x,y,z](∅ → z.val − y.val ≥ 365) states that an entity
// cannot be destroyed within a year of its creation.
//
// It demonstrates the smallest possible pipeline: build a graph, parse one
// rule from the DSL, Validate, then Detect. Expected output:
//
//	found 1 violation(s):
//	  rule phi1: entity "BBC_Trust" destroyed before it was created
package main

import (
	"fmt"
	"log"
	"strings"

	"ngd"
)

const rules = `
rule phi1 {
  match {
    x: _
    y: date
    z: date
    x -wasCreatedOnDate-> y
    x -wasDestroyedOnDate-> z
  }
  when {
  }
  then {
    z.val - y.val >= 365
  }
}
`

func main() {
	// Build the Yago fragment G1 of Figure 1.
	g := ngd.NewGraph()
	trust := g.AddNode("institution")
	g.SetAttr(trust, "name", ngd.Str("BBC_Trust"))
	created := g.AddNode("date")
	g.SetAttr(created, "val", ngd.Int(dayNumber(2007, 1, 1)))
	destroyed := g.AddNode("date")
	g.SetAttr(destroyed, "val", ngd.Int(dayNumber(1946, 8, 28)))
	g.AddEdge(trust, created, "wasCreatedOnDate")
	g.AddEdge(trust, destroyed, "wasDestroyedOnDate")

	set, err := ngd.ParseRules(strings.NewReader(rules))
	if err != nil {
		log.Fatal(err)
	}

	if ngd.Validate(g, set) {
		fmt.Println("graph is consistent")
		return
	}
	res := ngd.Detect(g, set)
	fmt.Printf("found %d violation(s):\n", len(res.Violations))
	for _, v := range res.Violations {
		x := v.Match[v.Rule.Pattern.VarIndex("x")]
		fmt.Printf("  rule %s: entity %q destroyed before it was created\n",
			v.Rule.Name, mustStr(g.AttrByName(x, "name")))
	}
}

func mustStr(v ngd.Value) string {
	s, _ := v.AsString()
	return s
}

// dayNumber converts a date to a day count (differences are what matter).
func dayNumber(y, m, d int) int64 {
	if m <= 2 {
		y--
		m += 12
	}
	era := y / 400
	yoe := y - era*400
	doy := (153*(m-3)+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int64(era)*146097 + int64(doe)
}
