// Census consistency + rule reasoning: the paper's φ3 (population vs.
// population rank, Example 1(3)) on a DBpedia-style fragment, followed by
// the static analyses of §4 — satisfiability of conflicting rule sets
// (Example 5) and implication-based rule-set optimization.
//
// Expected output: one φ3 violation (Downey has fewer people than Corona
// but a better rank — the real DBpedia error the paper opens with); then
// the Example 5 verdicts ({φ5} and {φ6} each satisfiable, {φ5, φ6} not)
// and an implication check showing a redundant drift bound can be dropped.
package main

import (
	"fmt"
	"log"

	"ngd"
)

func main() {
	fmt.Println("== φ3: population/rank consistency ==")
	g := ngd.NewGraph()
	state := g.AddNode("place")
	g.SetAttr(state, "name", ngd.Str("California"))
	census := g.AddNode("date")
	g.SetAttr(census, "val", ngd.Int(20140401))

	// city data: (name, population, rank) — Corona vs Downey reproduces
	// the DBpedia error: Corona has more people but a worse (higher) rank
	cities := []struct {
		name string
		pop  int64
		rank int64
	}{
		{"Fresno", 520000, 5},
		{"Sacramento", 500000, 6},
		{"Corona", 160000, 33},
		{"Downey", 111772, 11},
	}
	for _, c := range cities {
		city := g.AddNode("place")
		g.SetAttr(city, "name", ngd.Str(c.name))
		g.AddEdge(city, state, "partof")
		g.AddEdge(city, census, "date")
		pop := g.AddNode("integer")
		g.SetAttr(pop, "val", ngd.Int(c.pop))
		g.AddEdge(city, pop, "population")
		rank := g.AddNode("integer")
		g.SetAttr(rank, "val", ngd.Int(c.rank))
		g.AddEdge(city, rank, "populationRank")
	}

	phi3 := buildPhi3()
	res := ngd.Detect(g, ngd.NewRuleSet(phi3))
	fmt.Printf("violations: %d\n", len(res.Violations))
	for _, v := range res.Violations {
		x := v.Match[v.Rule.Pattern.VarIndex("x")]
		y := v.Match[v.Rule.Pattern.VarIndex("y")]
		nx, _ := g.AttrByName(x, "name").AsString()
		ny, _ := g.AttrByName(y, "name").AsString()
		fmt.Printf("  %s has fewer people than %s but a better rank\n", nx, ny)
	}

	fmt.Println("\n== §4: satisfiability (Example 5) ==")
	phi5 := singleRule("phi5", nil, []string{"x.A = 7", "x.B = 7"})
	phi6 := singleRule("phi6", nil, []string{"x.A + x.B = 11"})
	report := func(name string, set *ngd.RuleSet) {
		v, err := ngd.Satisfiable(set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s satisfiable: %v\n", name, v)
	}
	report("{φ5}", ngd.NewRuleSet(phi5))
	report("{φ6}", ngd.NewRuleSet(phi6))
	report("{φ5, φ6}", ngd.NewRuleSet(phi5, phi6)) // conflicting: no

	fmt.Println("\n== §4: implication (redundant rule pruning) ==")
	// data-quality engineers often accumulate redundant rules; implication
	// analysis removes them: a 1-hop drift bound entails the 2-hop bound
	oneHop := driftRule("drift1", 1, 50)
	twoHop := driftRule("drift2", 2, 100)
	v, err := ngd.Implies(ngd.NewRuleSet(oneHop), twoHop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  drift1 ⊨ drift2: %v (drift2 is redundant, drop it)\n", v)
	tight := driftRule("tight", 2, 80)
	v, err = ngd.Implies(ngd.NewRuleSet(oneHop), tight)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  drift1 ⊨ tight:  %v (the 80 bound adds real constraints)\n", v)
}

func buildPhi3() *ngd.Rule {
	q := ngd.NewPattern()
	x := q.AddNode("x", "place")
	y := q.AddNode("y", "place")
	z := q.AddNode("z", "place")
	w := q.AddNode("w", "date")
	m1 := q.AddNode("m1", "integer")
	n1 := q.AddNode("n1", "integer")
	m2 := q.AddNode("m2", "integer")
	n2 := q.AddNode("n2", "integer")
	q.AddEdge(x, z, "partof")
	q.AddEdge(y, z, "partof")
	q.AddEdge(x, w, "date")
	q.AddEdge(y, w, "date")
	q.AddEdge(x, m1, "population")
	q.AddEdge(x, n1, "populationRank")
	q.AddEdge(y, m2, "population")
	q.AddEdge(y, n2, "populationRank")
	return ngd.MustRule("phi3", q,
		[]ngd.Literal{ngd.MustLiteral("m1.val < m2.val")},
		[]ngd.Literal{ngd.MustLiteral("n1.val > n2.val")},
	)
}

func singleRule(name string, when []string, then []string) *ngd.Rule {
	q := ngd.NewPattern()
	q.AddNode("x", "_")
	var w, t []ngd.Literal
	for _, s := range when {
		w = append(w, ngd.MustLiteral(s))
	}
	for _, s := range then {
		t = append(t, ngd.MustLiteral(s))
	}
	return ngd.MustRule(name, q, w, t)
}

func driftRule(name string, hops int, bound int64) *ngd.Rule {
	q := ngd.NewPattern()
	prev := q.AddNode("x0", "sensor")
	for i := 1; i <= hops; i++ {
		cur := q.AddNode(fmt.Sprintf("x%d", i), "sensor")
		q.AddEdge(prev, cur, "linked")
		prev = cur
	}
	lit := ngd.MustLiteral(fmt.Sprintf("abs(x0.reading - x%d.reading) <= %d", hops, bound))
	return ngd.MustRule(name, q, nil, []ngd.Literal{lit})
}
