package ngd_test

import (
	"strings"
	"testing"

	"ngd"
)

const quickRules = `
rule sum {
  match {
    x: area
    f: integer
    m: integer
    t: integer
    x -female-> f
    x -male-> m
    x -total-> t
  }
  when {
  }
  then {
    f.val + m.val = t.val
  }
}
`

func buildArea(g *ngd.Graph, f, m, tot int64) ngd.NodeID {
	area := g.AddNode("area")
	fn := g.AddNode("integer")
	g.SetAttr(fn, "val", ngd.Int(f))
	mn := g.AddNode("integer")
	g.SetAttr(mn, "val", ngd.Int(m))
	tn := g.AddNode("integer")
	g.SetAttr(tn, "val", ngd.Int(tot))
	g.AddEdge(area, fn, "female")
	g.AddEdge(area, mn, "male")
	g.AddEdge(area, tn, "total")
	return area
}

func TestPublicAPIBatch(t *testing.T) {
	g := ngd.NewGraph()
	buildArea(g, 600, 722, 1322) // consistent
	bad := buildArea(g, 600, 722, 1572)

	rules, err := ngd.ParseRules(strings.NewReader(quickRules))
	if err != nil {
		t.Fatal(err)
	}
	if ngd.Validate(g, rules) {
		t.Fatal("inconsistent graph validated")
	}
	res := ngd.Detect(g, rules)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(res.Violations))
	}
	v := res.Violations[0]
	if v.Match[v.Rule.Pattern.VarIndex("x")] != bad {
		t.Error("wrong entity flagged")
	}
	if got := ngd.DetectLimit(g, rules, 1); len(got.Violations) != 1 {
		t.Error("DetectLimit mismatch")
	}
}

func TestPublicAPIIncremental(t *testing.T) {
	g := ngd.NewGraph()
	buildArea(g, 1, 2, 3)
	rules, err := ngd.ParseRules(strings.NewReader(quickRules))
	if err != nil {
		t.Fatal(err)
	}

	// a new inconsistent area arrives via ΔG
	area := g.AddNode("area")
	fn := g.AddNode("integer")
	g.SetAttr(fn, "val", ngd.Int(10))
	mn := g.AddNode("integer")
	g.SetAttr(mn, "val", ngd.Int(20))
	tn := g.AddNode("integer")
	g.SetAttr(tn, "val", ngd.Int(99))
	d := &ngd.Delta{}
	d.Insert(area, fn, g.Symbols().Label("female"))
	d.Insert(area, mn, g.Symbols().Label("male"))
	d.Insert(area, tn, g.Symbols().Label("total"))

	dv := ngd.IncDetect(g, rules, d)
	if len(dv.Plus) != 1 || len(dv.Minus) != 0 {
		t.Fatalf("ΔVio = +%d/-%d, want +1/-0", len(dv.Plus), len(dv.Minus))
	}
	// parallel agrees
	pdv, met := ngd.PIncDetect(g, rules, d, ngd.Parallel(4))
	if len(pdv.Plus) != 1 || len(pdv.Minus) != 0 {
		t.Fatal("PIncDetect disagrees")
	}
	if met.Units == 0 {
		t.Error("metrics not populated")
	}
	// batch parallel on the updated view
	d.Apply(g)
	pres, _ := ngd.PDetect(g, rules, ngd.Parallel(4))
	if len(pres.Violations) != 1 {
		t.Fatalf("PDetect after apply: %d violations", len(pres.Violations))
	}
}

func TestPublicAPIReasoning(t *testing.T) {
	q1 := ngd.NewPattern()
	q1.AddNode("x", "_")
	r1 := ngd.MustRule("a", q1, nil, []ngd.Literal{ngd.MustLiteral("x.v = 7")})
	q2 := ngd.NewPattern()
	q2.AddNode("x", "_")
	r2 := ngd.MustRule("b", q2, nil, []ngd.Literal{ngd.MustLiteral("x.v = 8")})

	if v, err := ngd.Satisfiable(ngd.NewRuleSet(r1)); err != nil || v != ngd.Yes {
		t.Fatalf("single rule satisfiable: %v %v", v, err)
	}
	if v, err := ngd.Satisfiable(ngd.NewRuleSet(r1, r2)); err != nil || v != ngd.No {
		t.Fatalf("conflicting rules: %v %v", v, err)
	}
	if v, err := ngd.StronglySatisfiable(ngd.NewRuleSet(r1)); err != nil || v != ngd.Yes {
		t.Fatalf("strong: %v %v", v, err)
	}
	q3 := ngd.NewPattern()
	q3.AddNode("x", "_")
	weaker := ngd.MustRule("c", q3, nil, []ngd.Literal{ngd.MustLiteral("x.v >= 7")})
	if v, err := ngd.Implies(ngd.NewRuleSet(r1), weaker); err != nil || v != ngd.Yes {
		t.Fatalf("implication: %v %v", v, err)
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := ngd.NewGraph()
	buildArea(g, 5, 6, 11)
	var sb strings.Builder
	if err := ngd.WriteGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, ids, err := ngd.LoadGraph(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || len(ids) != g.NumNodes() {
		t.Fatal("graph IO round trip failed")
	}
	rules, _ := ngd.ParseRules(strings.NewReader(quickRules))
	if !ngd.Validate(g2, rules) {
		t.Error("consistent graph failed validation after round trip")
	}
	// rule formatting round-trips
	again, err := ngd.ParseRules(strings.NewReader(ngd.FormatRules(rules)))
	if err != nil || again.Len() != rules.Len() {
		t.Fatalf("rule format round trip: %v", err)
	}
}

func TestPublicAPISession(t *testing.T) {
	g := ngd.NewGraph()
	buildArea(g, 600, 722, 1322) // consistent
	bad := buildArea(g, 600, 722, 1572)
	rules, err := ngd.ParseRules(strings.NewReader(quickRules))
	if err != nil {
		t.Fatal(err)
	}

	s := ngd.NewSession(g, rules, ngd.SessionOptions{})
	if s.Len() != 1 {
		t.Fatalf("seeded store = %d, want 1", s.Len())
	}

	// repair the bad area by rewiring its total to a correct node
	totLbl := g.Symbols().Label("total")
	var oldTot ngd.NodeID = -1
	for _, h := range g.Out(bad) {
		if h.Label == totLbl {
			oldTot = h.To
		}
	}
	fixed := g.AddNode("integer")
	g.SetAttr(fixed, "val", ngd.Int(1322))
	d := &ngd.Delta{}
	d.Delete(bad, oldTot, totLbl)
	d.Insert(bad, fixed, totLbl)
	st := s.Commit(d)
	if st.Minus != 1 || st.Plus != 0 || s.Len() != 0 {
		t.Fatalf("commit stats %+v, store %d; want the violation repaired away", st, s.Len())
	}
	if got := ngd.Detect(s.Graph(), rules); len(got.Violations) != 0 {
		t.Fatalf("graph still violates after in-place commit: %d", len(got.Violations))
	}
}

func TestPublicAPIServe(t *testing.T) {
	g := ngd.NewGraph()
	buildArea(g, 600, 722, 1322) // consistent
	buildArea(g, 600, 722, 1572) // violating
	rules, err := ngd.ParseRules(strings.NewReader(quickRules))
	if err != nil {
		t.Fatal(err)
	}

	sess := ngd.NewSession(g, rules, ngd.SessionOptions{})
	srv := ngd.Serve(sess, ngd.ServeOptions{})
	defer srv.Close()

	sn := srv.Snapshot()
	if sn.Epoch != 0 || sn.Len() != 1 {
		t.Fatalf("seed snapshot: epoch %d, %d violations; want 0, 1", sn.Epoch, sn.Len())
	}
	key := sn.Violations()[0].Key()
	if _, ok := sn.Get(key); !ok {
		t.Fatal("snapshot Get missed a listed violation")
	}

	// a third, violating area arrives through the ingest queue: a node
	// star plus its edges, referencing nodes by registered and numeric ids
	done, err := srv.Enqueue([]ngd.UpdateOp{
		{Op: "node", ID: "area3", Label: "area"},
		{Op: "node", ID: "f3", Label: "integer", Attrs: map[string]any{"val": 1}},
		{Op: "node", ID: "m3", Label: "integer", Attrs: map[string]any{"val": 2}},
		{Op: "node", ID: "t3", Label: "integer", Attrs: map[string]any{"val": 5}},
		{Op: "insert", Src: "area3", Dst: "f3", Label: "female"},
		{Op: "insert", Src: "area3", Dst: "m3", Label: "male"},
		{Op: "insert", Src: "area3", Dst: "t3", Label: "total"},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done.Done()
	sn2 := srv.Snapshot()
	if sn2.Epoch != 1 || sn2.Len() != 2 {
		t.Fatalf("post-commit snapshot: epoch %d, %d violations; want 1, 2", sn2.Epoch, sn2.Len())
	}
	// the old snapshot is untouched
	if sn.Epoch != 0 || sn.Len() != 1 {
		t.Fatal("published snapshot mutated by a commit")
	}
	if st := srv.Stats(); st.Commits != 1 || st.StoreSize != 2 {
		t.Fatalf("server stats: %+v", st)
	}
}

func TestPublicAPIDurableStore(t *testing.T) {
	dir := t.TempDir()
	g := ngd.NewGraph()
	buildArea(g, 600, 722, 1322) // consistent
	buildArea(g, 600, 722, 1572) // violating
	rules, err := ngd.ParseRules(strings.NewReader(quickRules))
	if err != nil {
		t.Fatal(err)
	}

	// first boot: nothing to recover, bootstrap and serve durably
	st, rec, err := ngd.Open(dir, ngd.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("fresh directory reported recoverable state")
	}
	sess := ngd.NewSession(g, rules, ngd.SessionOptions{})
	names := make(map[string]ngd.NodeID)
	if err := st.Bootstrap(sess, rules, names); err != nil {
		t.Fatal(err)
	}
	srv := ngd.Serve(sess, ngd.ServeOptions{
		Names:       names,
		OnNewNode:   st.NoteName,
		AfterCommit: func(bs ngd.BatchStats) { st.MaybeCheckpoint() },
	})
	done, err := srv.Enqueue([]ngd.UpdateOp{
		{Op: "node", ID: "area3", Label: "area"},
		{Op: "node", ID: "f3", Label: "integer", Attrs: map[string]any{"val": 1}},
		{Op: "node", ID: "m3", Label: "integer", Attrs: map[string]any{"val": 2}},
		{Op: "node", ID: "t3", Label: "integer", Attrs: map[string]any{"val": 5}},
		{Op: "insert", Src: "area3", Dst: "f3", Label: "female"},
		{Op: "insert", Src: "area3", Dst: "m3", Label: "male"},
		{Op: "insert", Src: "area3", Dst: "t3", Label: "total"},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done.Done()
	wantKeys := make([]string, 0, 2)
	for _, v := range srv.Snapshot().Violations() {
		wantKeys = append(wantKeys, v.Key())
	}
	srv.Close()
	if err := st.Close(); err != nil { // crash: no final checkpoint
		t.Fatal(err)
	}
	if ss := st.Stats(); ss.Batches != 1 || ss.Seq != 1 {
		t.Fatalf("store stats after one batch: %+v", ss)
	}

	// second boot: recovery reproduces the store and the id map
	st2, rec2, err := ngd.Open(dir, ngd.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec2 == nil {
		t.Fatal("nothing recovered")
	}
	if rec2.Replayed != 1 {
		t.Errorf("replayed %d batches, want 1", rec2.Replayed)
	}
	vios := rec2.Session.Violations()
	if len(vios) != len(wantKeys) {
		t.Fatalf("recovered %d violations, want %d", len(vios), len(wantKeys))
	}
	for i, v := range vios {
		if v.Key() != wantKeys[i] {
			t.Fatalf("violation %d = %s, want %s", i, v.Key(), wantKeys[i])
		}
	}
	if _, ok := rec2.Names["area3"]; !ok {
		t.Fatal("external id area3 lost in recovery")
	}
	if err := ngd.Checkpoint(st2); err != nil {
		t.Fatal(err)
	}
	if ss := st2.Stats(); ss.SnapshotSeq != 1 || ss.Checkpoints != 1 {
		t.Fatalf("store stats after checkpoint: %+v", ss)
	}
}

func TestPublicAPIProgram(t *testing.T) {
	g := ngd.NewGraph()
	buildArea(g, 600, 722, 1322)
	bad := buildArea(g, 1, 2, 4)
	rules, err := ngd.ParseRules(strings.NewReader(quickRules))
	if err != nil {
		t.Fatal(err)
	}
	prog := ngd.NewProgram(g, rules, ngd.PlanOptions{})
	res1 := ngd.DetectWith(g, rules, prog, 0)
	res2 := ngd.DetectWith(g, rules, prog, 0)
	if len(res1.Violations) != 1 || len(res2.Violations) != 1 {
		t.Fatalf("violations = %d / %d, want 1 each", len(res1.Violations), len(res2.Violations))
	}
	v := res1.Violations[0]
	if v.Match[v.Rule.Pattern.VarIndex("x")] != bad {
		t.Error("wrong entity flagged")
	}
	c := prog.Counters()
	if c.Hits == 0 {
		t.Fatalf("second DetectWith run produced no plan-cache hits: %+v", c)
	}
	if got := ngd.DetectWith(g, rules, prog, 1); len(got.Violations) != 1 {
		t.Error("DetectWith limit mismatch")
	}

	// sessions surface the same program and its per-batch counters
	sess := ngd.NewSession(g, rules, ngd.SessionOptions{})
	if sess.Program() == nil {
		t.Fatal("session has no program")
	}
	var ps ngd.PlanCounters = sess.PlanStats()
	if ps.Rules == 0 {
		t.Fatal("session program compiled no rules")
	}
}

func TestPublicAPIAnalysis(t *testing.T) {
	mk := func(name, lit string) *ngd.Rule {
		q := ngd.NewPattern()
		q.AddNode("x", "_")
		return ngd.MustRule(name, q, nil, []ngd.Literal{ngd.MustLiteral(lit)})
	}
	conflict := ngd.NewRuleSet(mk("a", "x.v = 7"), mk("b", "x.v = 8"))

	rep := ngd.AnalyzeRules(conflict, ngd.AnalysisOptions{})
	if rep.Satisfiable != ngd.No || rep.Core == nil || len(rep.Core.Rules) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Signature != ngd.RulesSignature(conflict) {
		t.Fatal("signature mismatch")
	}

	q := ngd.NewPattern()
	q.AddNode("x", "_")
	dead := ngd.MustRule("dead", q,
		[]ngd.Literal{ngd.MustLiteral("x.v < 0"), ngd.MustLiteral("x.v > 0")},
		[]ngd.Literal{ngd.MustLiteral("x.v = 1")})
	min, dropped := ngd.MinimizeRules(ngd.NewRuleSet(mk("keep", "x.v >= 0"), dead))
	if len(min.Rules) != 1 || len(dropped) != 1 || dropped[0] != "dead" {
		t.Fatalf("minimize: kept %d, dropped %v", len(min.Rules), dropped)
	}

	if m, err := ngd.ParseAnalyzeMode("strict"); err != nil || m != ngd.AnalyzeStrict {
		t.Fatalf("ParseAnalyzeMode: %v %v", m, err)
	}

	// located parsing feeds diagnostics
	rules, lines, err := ngd.ParseRulesLocated(strings.NewReader(quickRules))
	if err != nil || lines["sum"] == 0 {
		t.Fatalf("ParseRulesLocated: %v lines=%v", err, lines)
	}
	if rep := ngd.AnalyzeRules(rules, ngd.AnalysisOptions{Lines: lines}); rep.Satisfiable != ngd.Yes {
		t.Fatalf("quickRules analysis: %+v", rep)
	}
}

func TestPublicAPIRepair(t *testing.T) {
	g := ngd.NewGraph()
	buildArea(g, 600, 722, 1322) // consistent
	buildArea(g, 600, 722, 1572) // violating: 600 + 722 ≠ 1572
	rules, err := ngd.ParseRules(strings.NewReader(quickRules))
	if err != nil {
		t.Fatal(err)
	}

	sess := ngd.NewSession(g, rules, ngd.SessionOptions{})
	srv := ngd.Serve(sess, ngd.ServeOptions{})
	defer srv.Close()

	key := srv.Snapshot().Violations()[0].Key()

	// preview: ranked fixes without mutating anything
	var res *ngd.RepairResult
	res, err = srv.PreviewRepair(key, ngd.RepairOptions{MaxFixes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fixes) == 0 {
		t.Fatalf("no fixes: %+v", res)
	}
	if srv.Snapshot().Epoch != 0 || srv.Snapshot().Len() != 1 {
		t.Fatal("preview mutated the server")
	}

	// apply the top-ranked fix: an ordinary commit clears the store
	var applied *ngd.RepairApplied
	applied, err = srv.ApplyRepair(key, "", ngd.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if applied.Remaining != 0 || srv.Snapshot().Len() != 0 {
		t.Fatalf("store after repair: %d (%+v)", srv.Snapshot().Len(), applied)
	}
	if got := ngd.Detect(sess.Graph(), rules); len(got.Violations) != 0 {
		t.Fatalf("graph still violates after repair: %d", len(got.Violations))
	}
}
